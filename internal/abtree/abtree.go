// Package abtree implements the remaining Fig. 3 baselines: an
// OCC-ABTree-style persistent (a,b)-tree (Srivastava & Brown, PPoPP'22)
// and its Elim-ABTree variant with publishing elimination.
//
// Both trees are fully persistent: the leaf directory and the leaves all
// live in NVM (no DRAM index — the design point that costs them against
// PHTM-vEB and LB+Tree in the paper's Fig. 3). Concurrency control is
// optimistic: each leaf carries a version seqlock; readers retry if the
// version moved, writers hold the odd version while they update and
// persist entries. Structural changes (splits) additionally take the
// directory lock.
//
// Elim-ABTree adds publishing elimination: when a writer finds a leaf
// locked, it publishes its operation in the leaf's (transient) publication
// array; the lock holder drains published operations in a batch, combining
// them by key so that an insert and a remove of the same key cancel
// without touching NVM at all — the mechanism behind its advantage on
// skewed workloads.
package abtree

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"bdhtm/internal/nvm"
	"bdhtm/internal/obs"
)

const (
	// LeafEntries is the number of KV slots per leaf.
	LeafEntries = 14

	leafVersionOff = 0 // seqlock: odd while locked; transient, reset at recovery
	leafBitmapOff  = 1
	leafNextOff    = 2
	leafEntryOff   = 3 // LeafEntries * (key+1, value)
	leafWords      = leafEntryOff + 2*LeafEntries

	rootFirstLeaf nvm.Addr = nvm.RootWords + 0
	rootBump      nvm.Addr = nvm.RootWords + 1
	rootMagicA    nvm.Addr = nvm.RootWords + 2
	heapBase      nvm.Addr = nvm.RootWords + 8

	magic = 0xab73ee01

	pubSlots = 8
)

// Publication slot states.
const (
	pubEmpty uint32 = iota
	pubWriting
	pubPending
	pubTaken
	pubDone
)

type pubOp struct {
	state  atomic.Uint32
	isIns  bool
	key    uint64
	value  uint64
	result bool // replaced / removed
	full   bool // leaf had no room; publisher must split and retry
}

type pubArray struct {
	slots [pubSlots]pubOp
}

// Tree is an OCC- or Elim-ABTree. It owns its heap.
type Tree struct {
	heap *nvm.Heap
	elim bool

	dirMu sync.RWMutex
	dir   []dirEntry // sorted leaf directory, mirrored durably in NVM

	dirRegion nvm.Addr // durable copy: count word + (minKey, leaf) pairs
	dirCap    int

	pubs []pubArray // per-leaf publication arrays (transient)

	bump  nvm.Addr
	count atomic.Int64

	eliminated atomic.Int64 // ops cancelled without NVM writes
	combined   atomic.Int64 // ops applied by another thread's drain

	obs *obs.Recorder
}

// SetObs attaches a telemetry recorder: every Get/Insert/Remove records
// its latency on it. Attach before the tree is shared between goroutines;
// nil disables recording.
func (t *Tree) SetObs(r *obs.Recorder) { t.obs = r }

type dirEntry struct {
	minKey uint64
	leaf   nvm.Addr
}

// New formats a tree. elim selects the Elim-ABTree variant.
func New(h *nvm.Heap, elim bool) *Tree {
	t := &Tree{heap: h, elim: elim}
	t.dirCap = 1 << 15
	t.dirRegion = heapBase
	t.bump = heapBase + nvm.Addr(1+2*t.dirCap)
	t.pubs = make([]pubArray, h.Words()/leafWords+1)
	first := t.allocLeaf()
	h.Store(rootFirstLeaf, uint64(first))
	h.Store(rootBump, uint64(t.bump))
	h.Store(rootMagicA, magic)
	h.FlushRange(rootFirstLeaf, 3)
	h.Fence()
	t.dir = []dirEntry{{minKey: 0, leaf: first}}
	t.persistDir()
	return t
}

// Elim reports whether publishing elimination is enabled.
func (t *Tree) Elim() bool { return t.elim }

// Len returns the number of keys.
func (t *Tree) Len() int { return int(t.count.Load()) }

// NVMBytes returns the NVM consumed by the directory region and leaves
// (Table 3; the tree keeps no DRAM index).
func (t *Tree) NVMBytes() int64 { return int64(t.bump-heapBase) * nvm.WordBytes }

// EliminationStats returns (eliminated, combined) operation counts.
func (t *Tree) EliminationStats() (int64, int64) {
	return t.eliminated.Load(), t.combined.Load()
}

func (t *Tree) allocLeaf() nvm.Addr {
	a := t.bump
	t.bump += leafWords
	if int(t.bump) > t.heap.Words() {
		panic("abtree: out of NVM")
	}
	for i := nvm.Addr(0); i < leafWords; i++ {
		t.heap.Store(a+i, 0)
	}
	t.heap.FlushRange(a, leafWords)
	t.heap.Store(rootBump, uint64(t.bump))
	t.heap.Persist(rootBump)
	return a
}

// persistDir writes the directory mirror to NVM. Caller holds dirMu.
func (t *Tree) persistDir() {
	if len(t.dir) > t.dirCap {
		panic("abtree: directory overflow")
	}
	t.heap.Store(t.dirRegion, uint64(len(t.dir)))
	for i, e := range t.dir {
		t.heap.Store(t.dirRegion+nvm.Addr(1+2*i), e.minKey)
		t.heap.Store(t.dirRegion+nvm.Addr(2+2*i), uint64(e.leaf))
	}
	t.heap.FlushRange(t.dirRegion, 1+2*len(t.dir))
	t.heap.Fence()
}

// findLeaf performs the "no DRAM index" lookup: a binary search over the
// directory's NVM words (charging NVM access costs), under dirMu.RLock.
func (t *Tree) findLeaf(k uint64) nvm.Addr {
	n := int(t.heap.Load(t.dirRegion))
	lo, hi := 0, n // invariant: dir[lo-1].minKey <= k < dir[hi].minKey
	for lo < hi {
		mid := (lo + hi) / 2
		if t.heap.Load(t.dirRegion+nvm.Addr(1+2*mid)) > k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return nvm.Addr(t.heap.Load(t.dirRegion + nvm.Addr(2*lo)))
}

func entryAddr(leaf nvm.Addr, s int) nvm.Addr { return leaf + leafEntryOff + nvm.Addr(2*s) }

func (t *Tree) leafIdx(leaf nvm.Addr) int { return int((leaf - heapBase) / leafWords) }

// lockLeaf acquires the leaf's seqlock (even -> odd).
func (t *Tree) lockLeaf(leaf nvm.Addr) bool {
	v := t.heap.Load(leaf + leafVersionOff)
	return v%2 == 0 && t.heap.CompareAndSwap(leaf+leafVersionOff, v, v+1)
}

func (t *Tree) unlockLeaf(leaf nvm.Addr) {
	t.heap.Store(leaf+leafVersionOff, t.heap.Load(leaf+leafVersionOff)+1)
}

// Get returns the value stored under k, with an optimistic seqlock read.
func (t *Tree) Get(k uint64) (uint64, bool) {
	if t.obs != nil {
		defer t.obs.EndOp(obs.OpLookup, k, t.obs.Now())
	}
	for {
		t.dirMu.RLock()
		leaf := t.findLeaf(k)
		t.dirMu.RUnlock()
		v1 := t.heap.Load(leaf + leafVersionOff)
		if v1%2 == 1 {
			runtime.Gosched()
			continue
		}
		var val uint64
		found := false
		bm := t.heap.Load(leaf + leafBitmapOff)
		for s := 0; s < LeafEntries; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			a := entryAddr(leaf, s)
			if t.heap.Load(a) == k+1 {
				val, found = t.heap.Load(a+1), true
				break
			}
		}
		if t.heap.Load(leaf+leafVersionOff) == v1 {
			return val, found
		}
	}
}

// Insert adds or updates k, reporting whether an existing value was
// replaced.
func (t *Tree) Insert(k, v uint64) bool {
	if t.obs != nil {
		defer t.obs.EndOp(obs.OpInsert, k, t.obs.Now())
	}
	return t.update(k, v, true)
}

// Remove deletes k, reporting whether it was present.
func (t *Tree) Remove(k uint64) bool {
	if t.obs != nil {
		defer t.obs.EndOp(obs.OpRemove, k, t.obs.Now())
	}
	return t.update(k, 0, false)
}

func (t *Tree) update(k, v uint64, isIns bool) bool {
	for {
		t.dirMu.RLock()
		leaf := t.findLeaf(k)
		if t.lockLeaf(leaf) {
			// Revalidate under the lock.
			if t.findLeaf(k) != leaf {
				t.unlockLeaf(leaf)
				t.dirMu.RUnlock()
				continue
			}
			res, full := t.applyLocked(leaf, k, v, isIns)
			if t.elim {
				t.drainPubs(leaf)
			}
			t.unlockLeaf(leaf)
			t.dirMu.RUnlock()
			if full {
				t.split(k)
				continue
			}
			return res
		}
		// Leaf is locked by another writer.
		if t.elim {
			if res, ok := t.publish(leaf, k, v, isIns); ok {
				t.dirMu.RUnlock()
				if res == pubResFull {
					t.split(k)
					continue
				}
				return res == pubResTrue
			}
		}
		t.dirMu.RUnlock()
		runtime.Gosched()
	}
}

// applyLocked performs one operation on a locked leaf. full=true means an
// insert found no free slot (caller splits and retries).
func (t *Tree) applyLocked(leaf nvm.Addr, k, v uint64, isIns bool) (res, full bool) {
	bm := t.heap.Load(leaf + leafBitmapOff)
	free := -1
	for s := 0; s < LeafEntries; s++ {
		if bm&(1<<s) == 0 {
			if free < 0 {
				free = s
			}
			continue
		}
		a := entryAddr(leaf, s)
		if t.heap.Load(a) != k+1 {
			continue
		}
		if isIns {
			t.heap.Store(a+1, v)
			t.heap.Persist(a + 1)
			return true, false
		}
		t.heap.Store(leaf+leafBitmapOff, bm&^(1<<s))
		t.heap.Persist(leaf + leafBitmapOff)
		t.count.Add(-1)
		return true, false
	}
	if !isIns {
		return false, false
	}
	if free < 0 {
		return false, true
	}
	a := entryAddr(leaf, free)
	t.heap.Store(a, k+1)
	t.heap.Store(a+1, v)
	t.heap.FlushRange(a, 2)
	t.heap.Fence()
	t.heap.Store(leaf+leafBitmapOff, bm|1<<free)
	t.heap.Persist(leaf + leafBitmapOff)
	t.count.Add(1)
	return false, false
}

type pubResult int

const (
	pubResFalse pubResult = iota
	pubResTrue
	pubResFull
)

// publish hands the operation to the current lock holder. It returns
// ok=false if no publication slot was free or the holder released the
// lock before taking the operation (caller retries).
func (t *Tree) publish(leaf nvm.Addr, k, v uint64, isIns bool) (pubResult, bool) {
	pa := &t.pubs[t.leafIdx(leaf)]
	var slot *pubOp
	for i := range pa.slots {
		s := &pa.slots[i]
		if s.state.Load() == pubEmpty && s.state.CompareAndSwap(pubEmpty, pubWriting) {
			slot = s
			break
		}
	}
	if slot == nil {
		return 0, false
	}
	slot.isIns = isIns
	slot.key = k
	slot.value = v
	slot.state.Store(pubPending)
	for {
		switch slot.state.Load() {
		case pubDone:
			res := pubResFalse
			if slot.full {
				res = pubResFull
			} else if slot.result {
				res = pubResTrue
			}
			slot.state.Store(pubEmpty)
			return res, true
		case pubPending:
			// If the lock holder left without draining us, reclaim the
			// slot and retry as a locker.
			if t.heap.Load(leaf+leafVersionOff)%2 == 0 {
				if slot.state.CompareAndSwap(pubPending, pubEmpty) {
					return 0, false
				}
			}
			runtime.Gosched()
		default:
			runtime.Gosched()
		}
	}
}

// drainPubs applies all published operations on a locked leaf, combining
// them by key: within the batch, an insert followed by a remove of the
// same key (or vice versa) cancels, so only each key's net effect reaches
// NVM. Caller holds the leaf lock.
func (t *Tree) drainPubs(leaf nvm.Addr) {
	pa := &t.pubs[t.leafIdx(leaf)]
	var taken []*pubOp
	for i := range pa.slots {
		s := &pa.slots[i]
		if s.state.Load() == pubPending && s.state.CompareAndSwap(pubPending, pubTaken) {
			taken = append(taken, s)
		}
	}
	if len(taken) == 0 {
		return
	}
	// Group by key, preserving arrival order within the batch.
	byKey := make(map[uint64][]*pubOp, len(taken))
	var keys []uint64
	for _, s := range taken {
		if _, seen := byKey[s.key]; !seen {
			keys = append(keys, s.key)
		}
		byKey[s.key] = append(byKey[s.key], s)
	}
	for _, k := range keys {
		ops := byKey[k]
		// Current state of k in the leaf (no NVM writes yet).
		curVal, present := t.peek(leaf, k)
		_ = curVal
		netPresent, netVal := present, curVal
		for _, s := range ops {
			if s.isIns {
				s.result = netPresent
				netPresent, netVal = true, s.value
			} else {
				s.result = netPresent
				netPresent = false
			}
			s.full = false
		}
		// Apply the net effect once.
		switch {
		case netPresent:
			res, full := t.applyLocked(leaf, k, netVal, true)
			_ = res
			if full {
				// No room: fail the op(s) that needed the slot back to
				// their publishers for a split-and-retry.
				for _, s := range ops {
					if s.isIns {
						s.full = true
					}
				}
			}
			if !present {
				// count adjustment handled inside applyLocked
				_ = present
			}
			if present != netPresent && len(ops) > 1 {
				t.eliminated.Add(int64(len(ops) - 1))
			}
		case present: // net removal
			t.applyLocked(leaf, k, 0, false)
			if len(ops) > 1 {
				t.eliminated.Add(int64(len(ops) - 1))
			}
		default: // never present, insert+remove cancelled entirely
			t.eliminated.Add(int64(len(ops)))
		}
		t.combined.Add(int64(len(ops)))
		for _, s := range ops {
			s.state.Store(pubDone)
		}
	}
}

// peek reads k's value on a locked leaf without NVM-state changes.
func (t *Tree) peek(leaf nvm.Addr, k uint64) (uint64, bool) {
	bm := t.heap.Load(leaf + leafBitmapOff)
	for s := 0; s < LeafEntries; s++ {
		if bm&(1<<s) == 0 {
			continue
		}
		a := entryAddr(leaf, s)
		if t.heap.Load(a) == k+1 {
			return t.heap.Load(a + 1), true
		}
	}
	return 0, false
}

// split divides the leaf covering k (same failure-atomic protocol as the
// LB+Tree baseline: new leaf persisted, chain link committed, old bitmap
// trimmed, directory mirror re-persisted).
func (t *Tree) split(k uint64) {
	t.dirMu.Lock()
	defer t.dirMu.Unlock()
	di := sort.Search(len(t.dir), func(i int) bool { return t.dir[i].minKey > k }) - 1
	leaf := t.dir[di].leaf
	for !t.lockLeaf(leaf) {
		runtime.Gosched()
	}
	defer t.unlockLeaf(leaf)

	bm := t.heap.Load(leaf + leafBitmapOff)
	if bm != (1<<LeafEntries)-1 {
		return
	}
	type kv struct {
		slot int
		key  uint64
	}
	var es []kv
	for s := 0; s < LeafEntries; s++ {
		es = append(es, kv{slot: s, key: t.heap.Load(entryAddr(leaf, s)) - 1})
	}
	sort.Slice(es, func(i, j int) bool { return es[i].key < es[j].key })
	mid := len(es) / 2
	splitKey := es[mid].key

	right := t.allocLeaf()
	var rightBM uint64
	for i, e := range es[mid:] {
		a := entryAddr(right, i)
		t.heap.Store(a, e.key+1)
		t.heap.Store(a+1, t.heap.Load(entryAddr(leaf, e.slot)+1))
		rightBM |= 1 << i
	}
	t.heap.Store(right+leafNextOff, t.heap.Load(leaf+leafNextOff))
	t.heap.Store(right+leafBitmapOff, rightBM)
	t.heap.FlushRange(right, leafWords)
	t.heap.Fence()

	t.heap.Store(leaf+leafNextOff, uint64(right))
	t.heap.Persist(leaf + leafNextOff)

	var leftBM uint64
	for _, e := range es[:mid] {
		leftBM |= 1 << e.slot
	}
	t.heap.Store(leaf+leafBitmapOff, leftBM)
	t.heap.Persist(leaf + leafBitmapOff)

	nd := make([]dirEntry, 0, len(t.dir)+1)
	nd = append(nd, t.dir[:di+1]...)
	nd = append(nd, dirEntry{minKey: splitKey, leaf: right})
	nd = append(nd, t.dir[di+1:]...)
	t.dir = nd
	t.persistDir()
}

// Recover reopens a tree after heap.Crash: leaf versions are reset, the
// directory is rebuilt from the leaf chain (resolving any interrupted
// split's duplicate window by the key-range invariant) and re-persisted.
func Recover(h *nvm.Heap, elim bool) *Tree {
	if h.Load(rootMagicA) != magic {
		panic("abtree: heap not formatted")
	}
	t := &Tree{heap: h, elim: elim}
	t.dirCap = 1 << 15
	t.dirRegion = heapBase
	t.bump = nvm.Addr(h.Load(rootBump))
	t.pubs = make([]pubArray, h.Words()/leafWords+1)
	leaf := nvm.Addr(h.Load(rootFirstLeaf))
	var count int64
	for !leaf.IsNil() {
		h.Store(leaf+leafVersionOff, 0) // reset transient seqlock
		next := nvm.Addr(h.Load(leaf + leafNextOff))
		bound := ^uint64(0)
		if !next.IsNil() {
			nbm := h.Load(next + leafBitmapOff)
			for s := 0; s < LeafEntries; s++ {
				if nbm&(1<<s) != 0 {
					if k := h.Load(entryAddr(next, s)) - 1; k < bound {
						bound = k
					}
				}
			}
		}
		bm := h.Load(leaf + leafBitmapOff)
		fixed := bm
		min := ^uint64(0)
		for s := 0; s < LeafEntries; s++ {
			if bm&(1<<s) == 0 {
				continue
			}
			k := h.Load(entryAddr(leaf, s)) - 1
			if k >= bound {
				fixed &^= 1 << s
				continue
			}
			if k < min {
				min = k
			}
			count++
		}
		if fixed != bm {
			h.Store(leaf+leafBitmapOff, fixed)
			h.Persist(leaf + leafBitmapOff)
		}
		switch {
		case len(t.dir) == 0:
			t.dir = append(t.dir, dirEntry{minKey: 0, leaf: leaf})
		case min != ^uint64(0):
			t.dir = append(t.dir, dirEntry{minKey: min, leaf: leaf})
		}
		leaf = next
	}
	t.count.Store(count)
	t.persistDir()
	return t
}
