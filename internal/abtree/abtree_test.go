package abtree

import (
	"math/rand/v2"
	"sync"
	"testing"

	"bdhtm/internal/nvm"
)

func variants(t *testing.T, f func(t *testing.T, elim bool)) {
	t.Run("OCC", func(t *testing.T) { f(t, false) })
	t.Run("Elim", func(t *testing.T) { f(t, true) })
}

func newTree(t *testing.T, elim bool) (*nvm.Heap, *Tree) {
	t.Helper()
	h := nvm.New(nvm.Config{Words: 1 << 21})
	return h, New(h, elim)
}

func TestBasics(t *testing.T) {
	variants(t, func(t *testing.T, elim bool) {
		_, tr := newTree(t, elim)
		if tr.Insert(5, 50) {
			t.Fatal("fresh insert reported replacement")
		}
		if v, ok := tr.Get(5); !ok || v != 50 {
			t.Fatalf("Get(5)=%d,%v", v, ok)
		}
		if !tr.Insert(5, 51) {
			t.Fatal("update not reported")
		}
		if !tr.Remove(5) || tr.Remove(5) {
			t.Fatal("remove semantics")
		}
		tr.Insert(0, 3)
		if v, ok := tr.Get(0); !ok || v != 3 {
			t.Fatalf("Get(0)=%d,%v", v, ok)
		}
	})
}

func TestSplitsAndModel(t *testing.T) {
	variants(t, func(t *testing.T, elim bool) {
		_, tr := newTree(t, elim)
		model := make(map[uint64]uint64)
		rng := rand.New(rand.NewPCG(8, 8))
		for i := 0; i < 6000; i++ {
			k := rng.Uint64N(1024)
			switch rng.Uint64N(5) {
			case 0:
				got := tr.Remove(k)
				_, want := model[k]
				if got != want {
					t.Fatalf("step %d Remove(%d)=%v want %v", i, k, got, want)
				}
				delete(model, k)
			case 1:
				gv, gok := tr.Get(k)
				wv, wok := model[k]
				if gok != wok || gv != wv {
					t.Fatalf("step %d Get(%d)=%d,%v want %d,%v", i, k, gv, gok, wv, wok)
				}
			default:
				v := rng.Uint64()
				got := tr.Insert(k, v)
				_, want := model[k]
				if got != want {
					t.Fatalf("step %d Insert(%d)=%v want %v", i, k, got, want)
				}
				model[k] = v
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("Len=%d model=%d", tr.Len(), len(model))
		}
	})
}

func TestConcurrentDisjoint(t *testing.T) {
	variants(t, func(t *testing.T, elim bool) {
		h := nvm.New(nvm.Config{Words: 1 << 22})
		tr := New(h, elim)
		const goroutines = 6
		const perG = 400
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				base := uint64(id * perG)
				for i := uint64(0); i < perG; i++ {
					tr.Insert(base+i, base+i+9)
				}
				for i := uint64(0); i < perG; i += 2 {
					tr.Remove(base + i)
				}
			}(g)
		}
		wg.Wait()
		if tr.Len() != goroutines*perG/2 {
			t.Fatalf("Len = %d", tr.Len())
		}
		for g := 0; g < goroutines; g++ {
			base := uint64(g * perG)
			for i := uint64(1); i < perG; i += 2 {
				if v, ok := tr.Get(base + i); !ok || v != base+i+9 {
					t.Fatalf("Get(%d)=%d,%v", base+i, v, ok)
				}
			}
		}
	})
}

// Hot-key hammering: under the Elim variant, total counts must stay exact
// even when operations are applied by other threads' drains.
func TestConcurrentHotKeys(t *testing.T) {
	variants(t, func(t *testing.T, elim bool) {
		h := nvm.New(nvm.Config{Words: 1 << 21})
		tr := New(h, elim)
		const goroutines = 4
		var wg sync.WaitGroup
		var inserts, removes [goroutines]int64
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(id), 6))
				for i := 0; i < 1500; i++ {
					k := rng.Uint64N(8) // extremely hot
					if rng.Uint64N(2) == 0 {
						if !tr.Insert(k, k) {
							inserts[id]++
						}
					} else {
						if tr.Remove(k) {
							removes[id]++
						}
					}
				}
			}(g)
		}
		wg.Wait()
		var net int64
		for g := 0; g < goroutines; g++ {
			net += inserts[g] - removes[g]
		}
		if int64(tr.Len()) != net {
			t.Fatalf("Len=%d, net inserts=%d", tr.Len(), net)
		}
		// And the structure agrees with itself.
		present := 0
		for k := uint64(0); k < 8; k++ {
			if _, ok := tr.Get(k); ok {
				present++
			}
		}
		if present != tr.Len() {
			t.Fatalf("probe found %d keys, Len=%d", present, tr.Len())
		}
	})
}

func TestEliminationHappens(t *testing.T) {
	h := nvm.New(nvm.Config{Words: 1 << 21})
	tr := New(h, true)
	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := uint64(i % 4)
				if id%2 == 0 {
					tr.Insert(k, uint64(i))
				} else {
					tr.Remove(k)
				}
			}
		}(g)
	}
	wg.Wait()
	_, combined := tr.EliminationStats()
	if combined == 0 {
		t.Skip("no combining observed on this run (single-CPU scheduling); mechanism covered elsewhere")
	}
}

func TestCrashRecovery(t *testing.T) {
	variants(t, func(t *testing.T, elim bool) {
		h, tr := newTree(t, elim)
		for k := uint64(0); k < 1500; k++ {
			tr.Insert(k, k+2)
		}
		tr.Remove(7)
		h.Crash(nvm.CrashOptions{})
		tr2 := Recover(h, elim)
		if tr2.Len() != 1499 {
			t.Fatalf("recovered Len = %d", tr2.Len())
		}
		for k := uint64(0); k < 1500; k += 13 {
			v, ok := tr2.Get(k)
			if k == 7 {
				continue
			}
			if !ok || v != k+2 {
				t.Fatalf("recovered Get(%d)=%d,%v", k, v, ok)
			}
		}
		if _, ok := tr2.Get(7); ok {
			t.Fatal("removed key survived")
		}
		tr2.Insert(9999, 1)
		if _, ok := tr2.Get(9999); !ok {
			t.Fatal("recovered tree not writable")
		}
	})
}

func TestPersistsPerInsert(t *testing.T) {
	h, tr := newTree(t, false)
	before := h.Stats()
	tr.Insert(77, 1)
	d := h.Stats().Sub(before)
	if d.Flushes < 2 {
		t.Fatalf("insert flushed %d times; fully persistent tree must persist entry and bitmap", d.Flushes)
	}
}

func TestNVMResidentLookups(t *testing.T) {
	// The directory search must read NVM words (no DRAM index): loads on
	// the heap should grow with every Get.
	h, tr := newTree(t, false)
	tr.Insert(1, 2)
	before := h.Stats().Loads
	tr.Get(1)
	if h.Stats().Loads == before {
		t.Fatal("Get did not touch NVM; directory should be NVM resident")
	}
}
