// Package cceh implements a CCEH-style persistent hash table (Nam et al.,
// FAST'19): cache-line-conscious extendible hashing, fully resident in
// NVM, failure atomic without logging. It is one of the two hash-table
// baselines in the paper's Fig. 6.
//
// Layout: a directory of segment addresses and the segments themselves
// all live in NVM. Each segment holds cache-line-sized buckets of
// (key, value) slot pairs. Updates take a per-segment reader/writer lock
// (transient, rebuilt after a crash); searches are lock-free-style reads
// under the read lock. Every insert performs the paper-quoted minimum of
// three persist operations: the value word, then the key word (the commit
// point), each flushed and fenced in order, plus directory/segment
// flushes on structural changes. Strict durable linearizability is the
// point — and the cost the paper's BD-Spash avoids.
//
// Simplifications vs. the original (see DESIGN.md): lazy segment merges
// are omitted, and probing is bucket-local linear probing over four
// cache-line buckets rather than MSB-based two-level probing.
package cceh

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bdhtm/internal/nvm"
	"bdhtm/internal/obs"
)

const (
	slotsPerBucket = 4  // one 64-byte line: 4 key words + 4 value words interleaved
	bucketsPerSeg  = 64 // 64 buckets -> 256 slots per segment
	segSlots       = slotsPerBucket * bucketsPerSeg
	segWords       = 1 + 2*segSlots // localDepth + (key,value) pairs
	probeBuckets   = 4

	maxSegLocks = 1 << 16

	// Heap layout.
	rootGlobalDepth nvm.Addr = nvm.RootWords + 0
	rootDirAddr     nvm.Addr = nvm.RootWords + 1
	rootBump        nvm.Addr = nvm.RootWords + 2
	rootMagicA      nvm.Addr = nvm.RootWords + 3
	heapBase        nvm.Addr = nvm.RootWords + 8

	magic = 0xccE4001

	maxDepth = 16 // directory capped at 65536 entries
)

// Table is a CCEH-style persistent hash table. It owns its heap.
type Table struct {
	heap *nvm.Heap

	dirMu sync.Mutex // serializes splits and doubling
	locks []sync.RWMutex

	count atomic.Int64
	bump  nvm.Addr // next free heap word (mirrored durably)

	obs *obs.Recorder
}

// SetObs attaches a telemetry recorder: every Get/Insert/Remove records
// its latency on it. Attach before the table is shared between
// goroutines; nil disables recording.
func (t *Table) SetObs(r *obs.Recorder) { t.obs = r }

func hash64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	return k ^ k>>33
}

// New formats a table on the heap with the given initial directory depth.
func New(h *nvm.Heap, initialDepth int) *Table {
	t := &Table{heap: h, locks: make([]sync.RWMutex, maxSegLocks)}
	t.bump = heapBase
	// Directory sized for the maximum depth so doubling never moves it.
	dir := t.alloc(1 << maxDepth)
	n := 1 << initialDepth
	for i := 0; i < n; i++ {
		seg := t.allocSegment(uint64(initialDepth))
		h.Store(dir+nvm.Addr(i), uint64(seg))
	}
	h.FlushRange(dir, n)
	h.Store(rootGlobalDepth, uint64(initialDepth))
	h.Store(rootDirAddr, uint64(dir))
	h.Store(rootMagicA, magic)
	t.persistBump()
	h.FlushRange(rootGlobalDepth, 8)
	h.Fence()
	return t
}

func (t *Table) alloc(words int) nvm.Addr {
	a := t.bump
	t.bump += nvm.Addr(words)
	if int(t.bump) > t.heap.Words() {
		panic("cceh: out of NVM")
	}
	return a
}

func (t *Table) persistBump() {
	t.heap.Store(rootBump, uint64(t.bump))
	t.heap.Persist(rootBump)
}

// allocSegment formats a segment: localDepth word + zeroed slots. Keys
// are stored +1 so the zero word means "empty slot".
func (t *Table) allocSegment(localDepth uint64) nvm.Addr {
	seg := t.alloc(segWords)
	t.heap.Store(seg, localDepth)
	for i := 1; i < segWords; i++ {
		t.heap.Store(seg+nvm.Addr(i), 0)
	}
	t.heap.FlushRange(seg, segWords)
	t.heap.Fence()
	t.persistBump()
	return seg
}

// Len returns the number of keys.
func (t *Table) Len() int { return int(t.count.Load()) }

func (t *Table) dir() (nvm.Addr, uint64) {
	return nvm.Addr(t.heap.Load(rootDirAddr)), t.heap.Load(rootGlobalDepth)
}

// segFor returns the segment address and its lock for hash h.
func (t *Table) segFor(h uint64) (nvm.Addr, *sync.RWMutex, uint64) {
	dir, gd := t.dir()
	idx := h & (1<<gd - 1)
	seg := nvm.Addr(t.heap.Load(dir + nvm.Addr(idx)))
	return seg, &t.locks[uint64(seg)%maxSegLocks], idx
}

// slotAddr returns the key-word address of slot s (its value word is +1).
func slotAddr(seg nvm.Addr, s int) nvm.Addr { return seg + 1 + nvm.Addr(2*s) }

// probe iterates the probeBuckets*slotsPerBucket slots for hash h.
func probeRange(h uint64) (start, n int) {
	b := int(h>>40) % bucketsPerSeg
	return b * slotsPerBucket, probeBuckets * slotsPerBucket
}

func probeSlot(start, i int) int { return (start + i) % segSlots }

// Get returns the value stored under k.
func (t *Table) Get(k uint64) (uint64, bool) {
	if t.obs != nil {
		defer t.obs.EndOp(obs.OpLookup, k, t.obs.Now())
	}
	h := hash64(k)
	for {
		seg, lock, _ := t.segFor(h)
		lock.RLock()
		// Revalidate: the segment may have split while we raced.
		if cur, _, _ := t.segFor(h); cur != seg {
			lock.RUnlock()
			continue
		}
		start, n := probeRange(h)
		for i := 0; i < n; i++ {
			a := slotAddr(seg, probeSlot(start, i))
			if t.heap.Load(a) == k+1 {
				v := t.heap.Load(a + 1)
				lock.RUnlock()
				return v, true
			}
		}
		lock.RUnlock()
		return 0, false
	}
}

// Insert adds or updates k, reporting whether an existing value was
// replaced. The slot's value word is persisted before its key word: the
// key write is the commit point, so a crash exposes either the complete
// pair or nothing.
func (t *Table) Insert(k, v uint64) bool {
	if t.obs != nil {
		defer t.obs.EndOp(obs.OpInsert, k, t.obs.Now())
	}
	h := hash64(k)
	for {
		seg, lock, _ := t.segFor(h)
		lock.Lock()
		if cur, _, _ := t.segFor(h); cur != seg {
			lock.Unlock()
			continue
		}
		start, n := probeRange(h)
		free := -1
		for i := 0; i < n; i++ {
			s := probeSlot(start, i)
			a := slotAddr(seg, s)
			kw := t.heap.Load(a)
			if kw == k+1 {
				// Update: persist the new value in place.
				t.heap.Store(a+1, v)
				t.heap.Persist(a + 1)
				lock.Unlock()
				return true
			}
			if kw == 0 && free < 0 {
				free = s
			}
		}
		if free < 0 {
			lock.Unlock()
			t.split(h)
			continue
		}
		a := slotAddr(seg, free)
		t.heap.Store(a+1, v)
		t.heap.Persist(a + 1) // persist value first
		t.heap.Store(a, k+1)
		t.heap.Persist(a) // key write is the commit point
		lock.Unlock()
		t.count.Add(1)
		return false
	}
}

// Remove deletes k, reporting whether it was present.
func (t *Table) Remove(k uint64) bool {
	if t.obs != nil {
		defer t.obs.EndOp(obs.OpRemove, k, t.obs.Now())
	}
	h := hash64(k)
	for {
		seg, lock, _ := t.segFor(h)
		lock.Lock()
		if cur, _, _ := t.segFor(h); cur != seg {
			lock.Unlock()
			continue
		}
		start, n := probeRange(h)
		for i := 0; i < n; i++ {
			a := slotAddr(seg, probeSlot(start, i))
			if t.heap.Load(a) == k+1 {
				t.heap.Store(a, 0)
				t.heap.Persist(a)
				lock.Unlock()
				t.count.Add(-1)
				return true
			}
		}
		lock.Unlock()
		return false
	}
}

// split splits the segment covering h, doubling the directory if needed.
// Failure atomicity: the two new segments are fully persisted before the
// directory entries are redirected (and the redirection is persisted
// before the split is visible to new operations through the directory).
func (t *Table) split(h uint64) {
	t.dirMu.Lock()
	defer t.dirMu.Unlock()
	dir, gd := t.dir()
	idx := h & (1<<gd - 1)
	seg := nvm.Addr(t.heap.Load(dir + nvm.Addr(idx)))
	lock := &t.locks[uint64(seg)%maxSegLocks]
	lock.Lock()
	defer lock.Unlock()

	// Re-check fullness: another split may have fixed it.
	start, n := probeRange(h)
	full := true
	for i := 0; i < n; i++ {
		if t.heap.Load(slotAddr(seg, probeSlot(start, i))) == 0 {
			full = false
			break
		}
	}
	if !full {
		return
	}

	ld := t.heap.Load(seg)
	if ld == gd {
		if gd+1 > maxDepth {
			panic("cceh: directory beyond maximum depth")
		}
		// Double: duplicate pointers into the upper half.
		for j := uint64(0); j < 1<<gd; j++ {
			p := t.heap.Load(dir + nvm.Addr(j))
			t.heap.Store(dir+nvm.Addr(j+1<<gd), p)
		}
		t.heap.FlushRange(dir+nvm.Addr(uint64(1)<<gd), 1<<gd)
		t.heap.Fence()
		t.heap.Store(rootGlobalDepth, gd+1)
		t.heap.Persist(rootGlobalDepth)
		gd++
	}

	s0 := t.allocSegment(ld + 1)
	s1 := t.allocSegment(ld + 1)
	for s := 0; s < segSlots; s++ {
		a := slotAddr(seg, s)
		kw := t.heap.Load(a)
		if kw == 0 {
			continue
		}
		key := kw - 1
		kh := hash64(key)
		dst := s0
		if kh>>ld&1 == 1 {
			dst = s1
		}
		st, nn := probeRange(kh)
		placed := false
		for i := 0; i < nn; i++ {
			da := slotAddr(dst, probeSlot(st, i))
			if t.heap.Load(da) == 0 {
				t.heap.Store(da+1, t.heap.Load(a+1))
				t.heap.Store(da, kw)
				placed = true
				break
			}
		}
		if !placed {
			panic(fmt.Sprintf("cceh: split overflow for key %d", key))
		}
	}
	t.heap.FlushRange(s0, segWords)
	t.heap.FlushRange(s1, segWords)
	t.heap.Fence()
	for j := uint64(0); j < 1<<gd; j++ {
		if nvm.Addr(t.heap.Load(dir+nvm.Addr(j))) != seg {
			continue
		}
		target := s0
		if j>>ld&1 == 1 {
			target = s1
		}
		t.heap.Store(dir+nvm.Addr(j), uint64(target))
		t.heap.Flush(dir + nvm.Addr(j))
	}
	t.heap.Fence()
}

// Recover reopens a table after heap.Crash. The directory and segments
// are authoritative in NVM; only the lock array and the count need
// rebuilding.
func Recover(h *nvm.Heap) *Table {
	if h.Load(rootMagicA) != magic {
		panic("cceh: heap not formatted")
	}
	t := &Table{heap: h, locks: make([]sync.RWMutex, maxSegLocks)}
	t.bump = nvm.Addr(h.Load(rootBump))
	dir, gd := t.dir()
	seen := make(map[nvm.Addr]bool)
	for j := uint64(0); j < 1<<gd; j++ {
		seg := nvm.Addr(h.Load(dir + nvm.Addr(j)))
		if seen[seg] {
			continue
		}
		seen[seg] = true
		for s := 0; s < segSlots; s++ {
			if h.Load(slotAddr(seg, s)) != 0 {
				t.count.Add(1)
			}
		}
	}
	return t
}
