package cceh

import (
	"math/rand/v2"
	"sync"
	"testing"

	"bdhtm/internal/nvm"
)

func newTable(t *testing.T, words int) (*nvm.Heap, *Table) {
	t.Helper()
	h := nvm.New(nvm.Config{Words: words})
	return h, New(h, 2)
}

func TestBasics(t *testing.T) {
	_, tab := newTable(t, 1<<20)
	if tab.Insert(5, 50) {
		t.Fatal("fresh insert reported replacement")
	}
	if v, ok := tab.Get(5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d,%v", v, ok)
	}
	if !tab.Insert(5, 51) {
		t.Fatal("update not reported")
	}
	if !tab.Remove(5) || tab.Remove(5) {
		t.Fatal("remove semantics")
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d", tab.Len())
	}
	// Key 0 must work (stored with +1 encoding).
	tab.Insert(0, 7)
	if v, ok := tab.Get(0); !ok || v != 7 {
		t.Fatalf("Get(0) = %d,%v", v, ok)
	}
}

func TestGrowthAndModel(t *testing.T) {
	_, tab := newTable(t, 1<<22)
	model := make(map[uint64]uint64)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 8000; i++ {
		k := rng.Uint64N(4096)
		switch rng.Uint64N(5) {
		case 0:
			got := tab.Remove(k)
			_, want := model[k]
			if got != want {
				t.Fatalf("step %d Remove(%d)=%v want %v", i, k, got, want)
			}
			delete(model, k)
		case 1:
			gv, gok := tab.Get(k)
			wv, wok := model[k]
			if gok != wok || gv != wv {
				t.Fatalf("step %d Get(%d)=%d,%v want %d,%v", i, k, gv, gok, wv, wok)
			}
		default:
			v := rng.Uint64()
			got := tab.Insert(k, v)
			_, want := model[k]
			if got != want {
				t.Fatalf("step %d Insert(%d)=%v want %v", i, k, got, want)
			}
			model[k] = v
		}
	}
	if tab.Len() != len(model) {
		t.Fatalf("Len=%d model=%d", tab.Len(), len(model))
	}
}

func TestInsertPersistsAtLeastTwice(t *testing.T) {
	h, tab := newTable(t, 1<<20)
	before := h.Stats()
	tab.Insert(99, 1)
	d := h.Stats().Sub(before)
	if d.Flushes < 2 || d.Fences < 2 {
		t.Fatalf("insert issued %d flushes / %d fences; CCEH persists value then key", d.Flushes, d.Fences)
	}
}

func TestCrashRecovery(t *testing.T) {
	h, tab := newTable(t, 1<<22)
	for k := uint64(0); k < 2000; k++ {
		tab.Insert(k, k*7)
	}
	tab.Remove(13)
	// No explicit sync needed: CCEH is strictly durable.
	h.Crash(nvm.CrashOptions{})
	tab2 := Recover(h)
	if tab2.Len() != 1999 {
		t.Fatalf("recovered Len = %d, want 1999", tab2.Len())
	}
	for k := uint64(0); k < 2000; k++ {
		v, ok := tab2.Get(k)
		if k == 13 {
			if ok {
				t.Fatal("removed key survived")
			}
			continue
		}
		if !ok || v != k*7 {
			t.Fatalf("recovered Get(%d)=%d,%v", k, v, ok)
		}
	}
	// The recovered table is writable and splits still work.
	for k := uint64(5000); k < 6000; k++ {
		tab2.Insert(k, k)
	}
	if v, _ := tab2.Get(5500); v != 5500 {
		t.Fatal("recovered table broken")
	}
}

func TestConcurrent(t *testing.T) {
	h := nvm.New(nvm.Config{Words: 1 << 22})
	tab := New(h, 2)
	const goroutines = 6
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			base := uint64(id * perG)
			for i := uint64(0); i < perG; i++ {
				tab.Insert(base+i, base+i+3)
			}
			for i := uint64(0); i < perG; i += 2 {
				tab.Remove(base + i)
			}
		}(g)
	}
	wg.Wait()
	if tab.Len() != goroutines*perG/2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for g := 0; g < goroutines; g++ {
		base := uint64(g * perG)
		for i := uint64(1); i < perG; i += 2 {
			if v, ok := tab.Get(base + i); !ok || v != base+i+3 {
				t.Fatalf("Get(%d)=%d,%v", base+i, v, ok)
			}
		}
	}
}

func TestTornInsertInvisibleAfterCrash(t *testing.T) {
	// Simulate the commit-point property: value persisted, key not yet.
	// A crash between the two persists must hide the pair entirely.
	h, tab := newTable(t, 1<<20)
	tab.Insert(1, 10)
	// Manually mimic a torn insert of key 2: find its slot and write only
	// the value (as Insert would just before the crash).
	h.Crash(nvm.CrashOptions{})
	tab2 := Recover(h)
	if v, ok := tab2.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1)=%d,%v", v, ok)
	}
	if _, ok := tab2.Get(2); ok {
		t.Fatal("phantom key")
	}
}
