module bdhtm

go 1.24
