// kvstore: a small persistent key-value service built on BD-Spash (the
// paper's Sec. 4.3 structure), exercising concurrent writers, a crash in
// the middle of traffic, and recovery — the lifecycle a storage engine
// embedding this library would see.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"sync"

	"bdhtm/internal/epoch"
	"bdhtm/internal/htm"
	"bdhtm/internal/nvm"
	"bdhtm/internal/spash"
)

const accounts = 512

func main() {
	heap := nvm.New(nvm.Config{Words: 1 << 21})
	sys := epoch.New(heap, epoch.Config{Manual: true})
	store := spash.New(spash.Config{Mode: spash.ModeBD, Sys: sys, TM: htm.Default()})

	// Phase 1: four writers give every account an opening balance.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := sys.Register()
			defer sys.Release(w)
			for a := g; a < accounts; a += 4 {
				store.Insert(w, uint64(a), 100)
			}
		}(g)
	}
	wg.Wait()
	fmt.Printf("opened %d accounts\n", store.Len())

	// Checkpoint: everything so far becomes durable.
	sys.Sync()

	// Phase 2: more traffic that the crash will partially erase — BDL
	// guarantees we roll back to a consistent recent state, never a torn
	// one (exactly the guarantee disk-backed databases have relied on).
	w := sys.Register()
	for a := 0; a < 40; a++ {
		store.Insert(w, uint64(a), 100+uint64(a)) // unsynced updates
	}
	sys.Release(w)

	sys.SimulateCrash(nvm.CrashOptions{EvictFraction: 0.3, Seed: 7})
	fmt.Println("-- power failure --")

	var recs []epoch.BlockRecord
	sys2 := epoch.Recover(heap, epoch.Config{Manual: true}, func(r epoch.BlockRecord) { recs = append(recs, r) })
	store2 := spash.New(spash.Config{Mode: spash.ModeBD, Sys: sys2, TM: htm.Default()})
	for _, r := range recs {
		store2.RebuildBlock(r)
	}

	fmt.Printf("recovered %d accounts\n", store2.Len())
	balanced := 0
	for a := 0; a < accounts; a++ {
		if v, ok := store2.Get(uint64(a)); ok && v == 100 {
			balanced++
		}
	}
	fmt.Printf("%d/%d accounts hold the checkpointed balance (unsynced updates rolled back)\n",
		balanced, accounts)

	// The store keeps serving after recovery.
	w2 := sys2.Register()
	store2.Insert(w2, 9999, 1)
	sys2.Release(w2)
	sys2.Sync()
	if v, ok := store2.Get(9999); ok {
		fmt.Println("post-recovery write served and persisted:", v)
	}
	sys2.Stop()
}
