// epoch-tuning: a walk through the Sec. 5.1 trade-off — epoch length vs
// throughput, NVM space, and the recovery-point staleness window — using
// the Listing-1 hash table. Miniature of the paper's Fig. 7 and Fig. 8.
//
//	go run ./examples/epoch-tuning
package main

import (
	"fmt"
	"time"

	"bdhtm/internal/bdhash"
	"bdhtm/internal/epoch"
	"bdhtm/internal/htm"
	"bdhtm/internal/nvm"
	"bdhtm/internal/ycsb"
)

func main() {
	fmt.Println("epoch length vs throughput / NVM footprint (zipf 0.99, 80% writes)")
	fmt.Printf("%-10s %14s %14s %10s\n", "epoch", "throughput", "NVM space", "advances")
	for _, el := range []time.Duration{
		100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	} {
		thr, mb, adv := run(el)
		fmt.Printf("%-10s %10.3f Mops %10.1f MiB %10d\n", el, thr, mb, adv)
	}
	fmt.Println("\nlonger epochs amortize background flushing but retain stale")
	fmt.Println("block copies longer (and widen the post-crash data-loss window);")
	fmt.Println("the paper recommends 10-100 ms and so does this reproduction.")
}

func run(epochLen time.Duration) (mops float64, mib float64, advances int64) {
	heap := nvm.New(nvm.Config{
		Words:      1 << 21,
		Latency:    nvm.OptaneProfile,
		CacheLines: 1 << 13,
	})
	sys := epoch.New(heap, epoch.Config{EpochLength: epochLen})
	tm := htm.Default()
	table := bdhash.New(sys, tm, 1<<14, 1)
	w := sys.Register()

	g := ycsb.NewZipfian(1<<14, 0.99, ycsb.Mix{ReadPct: 20}, 99)
	const dur = 300 * time.Millisecond
	deadline := time.Now().Add(dur)
	ops := 0
	for time.Now().Before(deadline) {
		for i := 0; i < 256; i++ {
			op, k, v := g.Next()
			switch op {
			case ycsb.OpRead:
				table.Get(k)
			case ycsb.OpInsert:
				table.Insert(w, k, v)
			case ycsb.OpRemove:
				table.Remove(w, k)
			}
			ops++
		}
	}
	st := sys.Stats()
	mib = float64(sys.Allocator().FootprintBytes()) / (1 << 20)
	sys.Stop()
	return float64(ops) / dur.Seconds() / 1e6, mib, st.Advances
}
