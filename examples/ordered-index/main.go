// ordered-index: range and successor queries over the buffered-durable
// structures — a PHTM-vEB tree (doubly logarithmic successor, Sec. 4.1)
// and a BDL skiplist (Sec. 4.2) — motivated by the storage-index use case
// in the paper's introduction.
//
//	go run ./examples/ordered-index
package main

import (
	"fmt"

	"bdhtm/internal/epoch"
	"bdhtm/internal/htm"
	"bdhtm/internal/nvm"
	"bdhtm/internal/skiplist"
	"bdhtm/internal/veb"
)

func main() {
	// Timestamps of "events" — sparse keys in a 2^20 universe.
	events := []uint64{4123, 90001, 90002, 250000, 777777, 1000000}

	// --- PHTM-vEB: successor queries in O(lg lg U) --------------------
	heap := nvm.New(nvm.Config{Words: 1 << 21})
	sys := epoch.New(heap, epoch.Config{Manual: true})
	tree := veb.New(veb.Config{UniverseBits: 20, TM: htm.Default(), DataSys: sys})
	w := sys.Register()
	for i, ts := range events {
		tree.Insert(w, ts, uint64(i))
	}
	sys.Sync()

	fmt.Println("PHTM-vEB: events after t=90001:")
	for t := uint64(90001); ; {
		nk, v, ok := tree.Successor(t)
		if !ok {
			break
		}
		fmt.Printf("  t=%d (event #%d)\n", nk, v)
		t = nk
	}

	// Range survives a crash: the index is rebuilt from NVM blocks.
	sys.SimulateCrash(nvm.CrashOptions{EvictFraction: 0.8, Seed: 1})
	var recs []epoch.BlockRecord
	sys2 := epoch.Recover(heap, epoch.Config{Manual: true}, func(r epoch.BlockRecord) { recs = append(recs, r) })
	tree2 := veb.New(veb.Config{UniverseBits: 20, TM: htm.Default(), DataSys: sys2})
	for _, r := range recs {
		tree2.RebuildBlock(r)
	}
	if nk, _, ok := tree2.Successor(250000); ok {
		fmt.Printf("after crash+recovery, successor(250000) = %d\n", nk)
	}
	sys2.Stop()

	// --- BDL skiplist: ordered scans -----------------------------------
	nh := nvm.New(nvm.Config{Words: 1 << 21})
	ssys := epoch.New(nh, epoch.Config{Manual: true})
	list := skiplist.New(skiplist.Config{
		Variant:   skiplist.BDL,
		IndexHeap: nvm.New(nvm.Config{Words: 1 << 21, Mode: nvm.ModeDRAM}),
		DataSys:   ssys,
		TM:        htm.Default(),
	})
	h := list.NewHandle()
	for i, ts := range events {
		h.Insert(ts, uint64(i)*10)
	}
	fmt.Println("BDL-Skiplist: full ordered scan:")
	list.Ascend(func(k, v uint64) bool {
		fmt.Printf("  t=%d -> %d\n", k, v)
		return true
	})
	if k, v, ok := h.Successor(90002); ok {
		fmt.Printf("skiplist successor(90002) = %d (value %d)\n", k, v)
	}
	h.Close()
	ssys.Stop()
}
