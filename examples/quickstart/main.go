// Quickstart: the paper's Listing-1 hash table end to end — insert under
// HTM with buffered durability, simulate a power failure, recover.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"bdhtm/internal/bdhash"
	"bdhtm/internal/epoch"
	"bdhtm/internal/htm"
	"bdhtm/internal/nvm"
)

func main() {
	// 1. A simulated NVM heap (volatile CPU cache over persistent media)
	//    and the buffered-durability epoch system on top of it.
	heap := nvm.New(nvm.Config{Words: 1 << 20})
	sys := epoch.New(heap, epoch.Config{Manual: true}) // we advance epochs by hand
	tm := htm.Default()

	table := bdhash.New(sys, tm, 4096, 1)
	w := sys.Register()

	// 2. Inserts run as hardware transactions; flushes never appear
	//    inside them — persistence is buffered per epoch.
	for k := uint64(0); k < 1000; k++ {
		table.Insert(w, k, k*k)
	}
	fmt.Printf("inserted %d keys in epoch %d\n", table.Len(), sys.GlobalEpoch())

	// 3. Make everything buffered so far durable (the background
	//    advancer normally does this every ~50ms).
	sys.Sync()
	fmt.Printf("persisted epoch is now %d\n", sys.PersistedEpoch())

	// 4. A few more inserts that will NOT be durable at the crash...
	for k := uint64(5000); k < 5010; k++ {
		table.Insert(w, k, 1)
	}

	// 5. Power failure: the volatile cache is lost; half the dirty lines
	//    happened to be written back in arbitrary order beforehand.
	sys.SimulateCrash(nvm.CrashOptions{EvictFraction: 0.5, Seed: 42})
	fmt.Println("-- crash --")

	// 6. Recovery scans the NVM heap, keeps exactly the blocks from
	//    persisted epochs, and rebuilds the DRAM index.
	var recs []epoch.BlockRecord
	sys2 := epoch.Recover(heap, epoch.Config{Manual: true}, func(r epoch.BlockRecord) {
		recs = append(recs, r)
	})
	table2 := bdhash.New(sys2, htm.Default(), 4096, 1)
	for _, r := range recs {
		table2.RebuildBlock(r)
	}

	fmt.Printf("recovered %d keys (persisted epoch %d)\n", table2.Len(), sys2.PersistedEpoch())
	if v, ok := table2.Get(31); ok && v == 31*31 {
		fmt.Println("synced data survived: Get(31) =", v)
	}
	if _, ok := table2.Get(5003); !ok {
		fmt.Println("unsynced tail correctly rolled back: Get(5003) -> not found")
	}
	sys2.Stop()
}
